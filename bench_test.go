package sparseapsp

// The benchmark harness regenerates every table and figure of the
// reproduction (see DESIGN.md §5). Each benchmark runs the experiment
// and reports the headline measured quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduction sweep. Wall-clock numbers measure the
// *simulation*, not the modelled machine — the modelled costs are the
// latency_msgs / bandwidth_words / mem_words metrics.

import (
	"math/rand"
	"sync"
	"testing"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/harness"
	"sparseapsp/internal/partition"
)

var (
	suiteOnce sync.Once
	suiteVal  *harness.Suite
	suiteErr  error
)

// sharedSuite runs the Table 2 sweep once for all Table 2 benchmarks.
func sharedSuite(b *testing.B) *harness.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = harness.NewSuite(harness.DefaultConfig())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// reportPoint exposes the largest-machine measurement of a suite table
// as benchmark metrics.
func reportLast(b *testing.B, s *harness.Suite) {
	pt := s.Points[len(s.Points)-1]
	b.ReportMetric(float64(pt.Sparse.Critical.Latency), "sparse_latency_msgs")
	b.ReportMetric(float64(pt.Sparse.Critical.Bandwidth), "sparse_bandwidth_words")
	b.ReportMetric(float64(pt.Sparse.MaxMemory), "sparse_mem_words")
	b.ReportMetric(float64(pt.DenseDC.Critical.Latency), "dc_latency_msgs")
	b.ReportMetric(float64(pt.DenseDC.Critical.Bandwidth), "dc_bandwidth_words")
}

// BenchmarkTable2Memory regenerates Table 2 row 1 (E1).
func BenchmarkTable2Memory(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		_ = s.Table2Memory().String()
	}
	b.Log("\n" + s.Table2Memory().String())
	reportLast(b, s)
}

// BenchmarkTable2Bandwidth regenerates Table 2 row 2 (E2).
func BenchmarkTable2Bandwidth(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		_ = s.Table2Bandwidth().String()
	}
	b.Log("\n" + s.Table2Bandwidth().String())
	reportLast(b, s)
}

// BenchmarkTable2Latency regenerates Table 2 row 3 (E3).
func BenchmarkTable2Latency(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		_ = s.Table2Latency().String()
	}
	b.Log("\n" + s.Table2Latency().String())
	reportLast(b, s)
}

// BenchmarkReductionFactors regenerates the Section 5.5 factors (E8).
func BenchmarkReductionFactors(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = s.ReductionFactors().String()
	}
	b.Log("\n" + out)
}

// BenchmarkLowerBounds regenerates the Section 6 comparison (E10).
func BenchmarkLowerBounds(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = s.LowerBounds().String()
	}
	b.Log("\n" + out)
}

// BenchmarkSeparatorCost regenerates the Section 5.4.4 check (E9).
func BenchmarkSeparatorCost(b *testing.B) {
	cfg := harness.DefaultConfig()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := harness.SeparatorCost(cfg)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

// BenchmarkCrossover regenerates the sparsity crossover sweep (E11).
func BenchmarkCrossover(b *testing.B) {
	cfg := harness.DefaultConfig()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := harness.Crossover(cfg, 576, 49)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

// BenchmarkSuperFWOps regenerates the operation-count table (E12 +
// Lemma 6.4).
func BenchmarkSuperFWOps(b *testing.B) {
	cfg := harness.DefaultConfig()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := harness.OperationCounts(cfg)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

// BenchmarkFigure1Reordering regenerates the Fig. 1 demo (E4).
func BenchmarkFigure1Reordering(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		t, err := harness.Figure1(1)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

// --- Per-solver wall-clock benchmarks on the standard grid workload ---

func benchGraph(side int) *Graph {
	rng := rand.New(rand.NewSource(11))
	return Grid2D(side, side, RandomWeights(rng, 1, 10))
}

func BenchmarkSparseAPSP(b *testing.B) {
	for _, p := range []int{9, 49, 225} {
		b.Run(benchName("p", p), func(b *testing.B) {
			g := benchGraph(24)
			b.ResetTimer()
			var rep Report
			for i := 0; i < b.N; i++ {
				r, err := apsp.SparseAPSP(g, p, 11)
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
			b.ReportMetric(float64(rep.MaxMemory), "mem_words")
		})
	}
}

func BenchmarkDCAPSP(b *testing.B) {
	for _, p := range []int{9, 49, 225} {
		b.Run(benchName("p", p), func(b *testing.B) {
			g := benchGraph(24)
			b.ResetTimer()
			var rep Report
			for i := 0; i < b.N; i++ {
				r, err := apsp.DCAPSP(g, p, 4)
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
		})
	}
}

func BenchmarkDist2DFW(b *testing.B) {
	for _, p := range []int{9, 49, 225} {
		b.Run(benchName("p", p), func(b *testing.B) {
			g := benchGraph(24)
			b.ResetTimer()
			var rep Report
			for i := 0; i < b.N; i++ {
				r, err := apsp.Dist2DFW(g, p)
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
		})
	}
}

func BenchmarkSequentialSolvers(b *testing.B) {
	g := benchGraph(16)
	b.Run("FloydWarshall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			apsp.FloydWarshall(g)
		}
	})
	b.Run("BlockedFW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			apsp.BlockedFloydWarshall(g, 64)
		}
	})
	b.Run("Johnson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apsp.Johnson(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SuperFW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apsp.SuperFW(g, 3, 11); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLayoutAblation sweeps the DC-APSP block-cyclic factor —
// the layout discussion of Section 5.1: larger factors improve balance
// during the recursion but inflate the latency cost.
func BenchmarkLayoutAblation(b *testing.B) {
	g := benchGraph(24)
	for _, cyc := range []int{1, 2, 4, 8} {
		b.Run(benchName("cyc", cyc), func(b *testing.B) {
			var rep Report
			for i := 0; i < b.N; i++ {
				r, err := apsp.DCAPSP(g, 49, cyc)
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
			b.ReportMetric(float64(rep.Critical.Flops), "critical_flops")
		})
	}
}

// BenchmarkNestedDissection measures the sequential preprocessing.
func BenchmarkNestedDissection(b *testing.B) {
	for _, side := range []int{16, 32, 48} {
		b.Run(benchName("side", side), func(b *testing.B) {
			g := benchGraph(side)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := partition.NestedDissection(g, 4, 11); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedND measures the replayed preprocessing cost.
func BenchmarkDistributedND(b *testing.B) {
	g := benchGraph(32)
	for _, p := range []int{9, 49, 225} {
		b.Run(benchName("p", p), func(b *testing.B) {
			var rep Report
			for i := 0; i < b.N; i++ {
				r, err := partition.DistributedNDCost(g, p, 11)
				if err != nil {
					b.Fatal(err)
				}
				rep = r
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Graph generator micro-benchmarks ---

func BenchmarkGenerators(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.Run("grid-32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.Grid2D(32, 32, graph.UnitWeights)
		}
	})
	b.Run("gnp-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.RandomGNP(1024, 4.0/1024, graph.UnitWeights, rng)
		}
	})
	b.Run("rmat-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.RMAT(10, 8, graph.UnitWeights, rng)
		}
	})
}

// BenchmarkR4Ablation compares the paper's one-to-one unit mapping
// (Corollary 5.5) with the Section 5.2.2 "trivial strategy": identical
// results, very different latency.
func BenchmarkR4Ablation(b *testing.B) {
	g := benchGraph(24)
	for _, strat := range []struct {
		name string
		s    apsp.R4Strategy
	}{{"mapped", apsp.R4Mapped}, {"sequential", apsp.R4Sequential}} {
		b.Run(strat.name, func(b *testing.B) {
			var rep Report
			for i := 0; i < b.N; i++ {
				r, err := apsp.SparseAPSPWith(g, 225, apsp.SparseOptions{Seed: 11, R4Strategy: strat.s})
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
		})
	}
}

// BenchmarkDist1DFW measures the unblocked baseline whose latency is
// polynomial in n (the Section 2 motivation for blocking).
func BenchmarkDist1DFW(b *testing.B) {
	g := benchGraph(16)
	for _, p := range []int{4, 9} {
		b.Run(benchName("p", p), func(b *testing.B) {
			var rep Report
			for i := 0; i < b.N; i++ {
				r, err := apsp.Dist1DFW(g, p)
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
		})
	}
}

// BenchmarkPerLevel regenerates the Lemma 5.6/5.8/5.9 per-level
// decomposition (E13).
func BenchmarkPerLevel(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		t, err := harness.PerLevel(harness.DefaultConfig(), 24, 225)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

// BenchmarkBcastAlgorithms compares the three broadcast algorithms'
// modelled costs at a dense-panel payload size.
func BenchmarkBcastAlgorithms(b *testing.B) {
	const q, words = 32, 8192
	algs := []struct {
		name string
		f    func(c *comm.Ctx, g []int, root, tag int, d []float64) []float64
	}{
		{"binomial", func(c *comm.Ctx, g []int, root, tag int, d []float64) []float64 {
			return c.Bcast(g, root, tag, d)
		}},
		{"linear", func(c *comm.Ctx, g []int, root, tag int, d []float64) []float64 {
			return c.BcastLinear(g, root, tag, d)
		}},
		{"scatter-allgather", func(c *comm.Ctx, g []int, root, tag int, d []float64) []float64 {
			return c.BcastScag(g, root, tag, d)
		}},
	}
	group := make([]int, q)
	for i := range group {
		group[i] = i
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			var rep Report
			for i := 0; i < b.N; i++ {
				m := comm.NewMachine(q)
				err := m.Run(func(c *comm.Ctx) {
					var payload []float64
					if c.Rank() == 0 {
						payload = make([]float64, words)
					}
					alg.f(c, group, 0, 10, payload)
				})
				if err != nil {
					b.Fatal(err)
				}
				rep = m.Report()
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
		})
	}
}

// BenchmarkDistributedNDReal measures the real distributed partitioner
// (vs BenchmarkDistributedND, the cited-cost replay).
func BenchmarkDistributedNDReal(b *testing.B) {
	g := benchGraph(32)
	for _, tc := range []struct{ p, h int }{{9, 2}, {49, 3}, {225, 4}} {
		b.Run(benchName("p", tc.p), func(b *testing.B) {
			var rep Report
			for i := 0; i < b.N; i++ {
				_, r, err := partition.DistributedND(g, tc.p, tc.h, 11)
				if err != nil {
					b.Fatal(err)
				}
				rep = r
			}
			b.ReportMetric(float64(rep.Critical.Latency), "latency_msgs")
			b.ReportMetric(float64(rep.Critical.Bandwidth), "bandwidth_words")
		})
	}
}

// BenchmarkSuperFWParallelism measures the shared-memory speedup of
// the eTree-parallel SuperFW over the sequential schedule.
func BenchmarkSuperFWParallelism(b *testing.B) {
	g := benchGraph(32)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apsp.SuperFW(g, 4, 11); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ly, err := apsp.NewLayout(g, 4, 11)
			if err != nil {
				b.Fatal(err)
			}
			apsp.SuperFWParallel(ly)
		}
	})
}
