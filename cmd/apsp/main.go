// Command apsp computes all-pairs shortest paths for a graph in the
// text edge-list format (see package graph), or a generated workload,
// and prints either a single distance, a full matrix, or the simulated
// communication-cost report.
//
// Usage:
//
//	apsp -gen grid -n 256 -p 49 -report
//	apsp -in graph.txt -alg superfw -from 0 -to 10
//	echo "n 3
//	0 1 2
//	1 2 2" | apsp -alg johnson -matrix
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"sparseapsp"
	"sparseapsp/internal/graph"
)

func main() {
	var (
		in     = flag.String("in", "", "input graph file; default stdin unless -gen")
		metis  = flag.Bool("metis", false, "input is METIS format instead of edge-list")
		gen    = flag.String("gen", "", "generate a workload instead: grid, grid3d, path, cycle, tree, gnp, gnp-dense, rmat, complete, star, rgg")
		n      = flag.Int("n", 256, "target vertex count for -gen")
		alg    = flag.String("alg", "auto", "algorithm: auto, sparse2d, dc, 2dfw, 1dfw, fw, blockedfw, superfw, superfw-par, johnson")
		p      = flag.Int("p", 0, "simulated machine size for distributed algorithms")
		seed   = flag.Int64("seed", 42, "random seed")
		from   = flag.Int("from", -1, "source vertex (-1: no single query)")
		to     = flag.Int("to", -1, "target vertex")
		path   = flag.Bool("path", false, "also print a shortest path for the -from/-to query")
		matrix = flag.Bool("matrix", false, "print the full distance matrix")
		report = flag.Bool("report", false, "print the communication-cost report")
	)
	flag.Parse()

	var g *sparseapsp.Graph
	var err error
	switch {
	case *gen != "":
		g, err = graph.NamedGenerator(*gen, *n, *seed)
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		if *metis {
			g, err = graph.ReadMETIS(f)
		} else {
			g, err = sparseapsp.ReadGraph(f)
		}
	default:
		if *metis {
			g, err = graph.ReadMETIS(os.Stdin)
		} else {
			g, err = sparseapsp.ReadGraph(os.Stdin)
		}
	}
	if err != nil {
		fatal(err)
	}

	res, err := sparseapsp.Solve(g, sparseapsp.Options{
		P:         *p,
		Algorithm: sparseapsp.Algorithm(*alg),
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("n=%d m=%d algorithm=%s", g.N(), g.M(), res.Algorithm)
	if res.SeparatorSize > 0 {
		fmt.Printf(" |S|=%d", res.SeparatorSize)
	}
	if res.Ops > 0 {
		fmt.Printf(" ops=%d", res.Ops)
	}
	fmt.Println()

	if *from >= 0 && *to >= 0 {
		if *from >= g.N() || *to >= g.N() {
			fatal(fmt.Errorf("query (%d,%d) outside [0,%d)", *from, *to, g.N()))
		}
		d := res.Dist.At(*from, *to)
		if math.IsInf(d, 1) {
			fmt.Printf("d(%d,%d) = unreachable\n", *from, *to)
		} else {
			fmt.Printf("d(%d,%d) = %g\n", *from, *to, d)
		}
		if *path {
			pr := sparseapsp.SolveWithPaths(g)
			fmt.Printf("path: %v\n", pr.Path(*from, *to))
		}
	}
	if *matrix {
		fmt.Print(res.Dist.String())
	}
	if *report {
		rep := res.Report
		fmt.Printf("critical path: latency=%d messages, bandwidth=%d words, flops=%d ops\n",
			rep.Critical.Latency, rep.Critical.Bandwidth, rep.Critical.Flops)
		fmt.Printf("totals: %d messages, %d words; max per-rank memory %d words\n",
			rep.TotalMessages, rep.TotalWords, rep.MaxMemory)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apsp:", err)
	os.Exit(1)
}
