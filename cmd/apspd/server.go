package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
)

// maxBodyBytes bounds request bodies (graphs arrive inline).
const maxBodyBytes = 64 << 20

// endpointStats counts one endpoint's traffic.
type endpointStats struct {
	Requests   atomic.Int64
	Errors     atomic.Int64
	InFlight   atomic.Int64
	TotalNanos atomic.Int64
	MaxNanos   atomic.Int64
}

type endpointSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	InFlight int64   `json:"in_flight"`
	TotalMs  float64 `json:"total_ms"`
	MaxMs    float64 `json:"max_ms"`
}

func (e *endpointStats) snapshot() endpointSnapshot {
	return endpointSnapshot{
		Requests: e.Requests.Load(),
		Errors:   e.Errors.Load(),
		InFlight: e.InFlight.Load(),
		TotalMs:  float64(e.TotalNanos.Load()) / 1e6,
		MaxMs:    float64(e.MaxNanos.Load()) / 1e6,
	}
}

// server is the apspd HTTP front-end over an oracle registry.
type server struct {
	reg       *oracle.Registry
	mux       *http.ServeMux
	started   time.Time
	endpoints map[string]*endpointStats
}

// newServer wires the handlers. The registry owns solving and caching;
// the server only parses requests and keeps per-endpoint counters.
func newServer(reg *oracle.Registry) *server {
	s := &server{
		reg:       reg,
		mux:       http.NewServeMux(),
		started:   time.Now(),
		endpoints: make(map[string]*endpointStats),
	}
	s.handle("load", "POST /load", s.handleLoad)
	s.handle("generate", "POST /generate", s.handleGenerate)
	s.handle("query", "POST /query", s.handleQuery)
	s.handle("reweight", "POST /reweight", s.handleReweight)
	s.handle("statsz", "GET /statsz", s.handleStatsz)
	s.handle("healthz", "GET /healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError carries an HTTP status through the handler return path.
type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }

func badRequest(format string, args ...interface{}) error {
	return &apiError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// handle registers a counted handler: requests, errors, in-flight and
// latency are tracked per endpoint and reported by /statsz.
func (s *server) handle(name, pattern string, h func(w http.ResponseWriter, r *http.Request) error) {
	st := &endpointStats{}
	s.endpoints[name] = st
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		st.Requests.Add(1)
		st.InFlight.Add(1)
		start := time.Now()
		err := h(w, r)
		nanos := time.Since(start).Nanoseconds()
		st.TotalNanos.Add(nanos)
		for {
			max := st.MaxNanos.Load()
			if nanos <= max || st.MaxNanos.CompareAndSwap(max, nanos) {
				break
			}
		}
		st.InFlight.Add(-1)
		if err != nil {
			st.Errors.Add(1)
			status := http.StatusInternalServerError
			var ae *apiError
			if errors.As(err, &ae) {
				status = ae.status
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		}
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// graphInfo is the response of /load and /generate: the id to query by
// plus basic shape info.
type graphInfo struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int    `json:"m"`
}

// register solves g through the registry (coalesced with any
// concurrent load of the same graph) and returns its id.
func (s *server) register(w http.ResponseWriter, g *graph.Graph) error {
	if _, err := s.reg.Get(g); err != nil {
		return badRequest("solve failed: %v", err)
	}
	return writeJSON(w, graphInfo{Graph: oracle.FingerprintOf(g).String(), N: g.N(), M: g.M()})
}

// loadRequest is the JSON form of /load; the endpoint also accepts the
// plain-text edge-list format of internal/graph (n header + "u v w"
// lines) when the body does not start with '{'.
type loadRequest struct {
	N     int          `json:"n"`
	Edges [][3]float64 `json:"edges"` // [u, v, w] triples
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return badRequest("reading body: %v", err)
	}
	trimmed := strings.TrimSpace(string(body))
	if trimmed == "" {
		return badRequest("empty body: want JSON {n, edges} or edge-list text")
	}
	var g *graph.Graph
	if strings.HasPrefix(trimmed, "{") {
		var req loadRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return badRequest("bad JSON: %v", err)
		}
		if req.N < 0 {
			return badRequest("negative vertex count %d", req.N)
		}
		g = graph.New(req.N)
		for i, e := range req.Edges {
			u, v := int(e[0]), int(e[1])
			if float64(u) != e[0] || float64(v) != e[1] || u < 0 || u >= req.N || v < 0 || v >= req.N {
				return badRequest("edge %d: endpoints (%g,%g) outside [0,%d)", i, e[0], e[1], req.N)
			}
			g.AddEdge(u, v, e[2])
		}
	} else {
		g, err = graph.Read(strings.NewReader(trimmed))
		if err != nil {
			return badRequest("bad edge list: %v", err)
		}
	}
	return s.register(w, g)
}

// generateRequest builds one of the named workload families of
// internal/graph (grid, grid3d, path, cycle, tree, gnp, rmat, rgg, ...).
type generateRequest struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
}

func (s *server) handleGenerate(w http.ResponseWriter, r *http.Request) error {
	var req generateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if req.N <= 0 {
		return badRequest("generate needs n > 0, got %d", req.N)
	}
	g, err := graph.NamedGenerator(req.Kind, req.N, req.Seed)
	if err != nil {
		return badRequest("%v", err)
	}
	return s.register(w, g)
}

// queryRequest asks for distances (and optionally full paths) for a
// batch of (source, target) pairs on a loaded graph.
type queryRequest struct {
	Graph string   `json:"graph"`
	Pairs [][2]int `json:"pairs"`
	Paths bool     `json:"paths"`
}

type queryResponse struct {
	Dists []float64 `json:"dists"` // -1 encodes unreachable (JSON has no Inf)
	Paths [][]int   `json:"paths,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if len(req.Pairs) == 0 {
		return badRequest("query needs at least one [u, v] pair")
	}
	fp, err := oracle.ParseFingerprint(req.Graph)
	if err != nil {
		return badRequest("%v", err)
	}
	o, ok, err := s.reg.Lookup(fp)
	if !ok {
		return &apiError{status: http.StatusNotFound,
			err: fmt.Errorf("unknown graph %s: load or generate it first", req.Graph)}
	}
	if err != nil {
		return badRequest("solve failed: %v", err)
	}
	dists, err := o.BatchDist(req.Pairs)
	if err != nil {
		return badRequest("%v", err)
	}
	resp := queryResponse{Dists: make([]float64, len(dists))}
	for i, d := range dists {
		if math.IsInf(d, 1) {
			resp.Dists[i] = -1
		} else {
			resp.Dists[i] = d
		}
	}
	if req.Paths {
		if resp.Paths, err = o.BatchPath(req.Pairs); err != nil {
			return badRequest("%v", err)
		}
	}
	return writeJSON(w, resp)
}

// reweightRequest changes the weights of existing edges of a loaded
// graph. Edits are [u, v, w] triples like /load's edges; every edge
// must already exist (reweighting never changes the structure). The
// repaired oracle is installed under the edited graph's fingerprint and
// the old fingerprint stops serving.
type reweightRequest struct {
	Graph string       `json:"graph"`
	Edits [][3]float64 `json:"edits"`
}

type reweightResponse struct {
	Graph string `json:"graph"` // the new fingerprint to query by
	N     int    `json:"n"`
	M     int    `json:"m"`

	Edits          int     `json:"edits"`
	Decreases      int     `json:"decreases"`
	Increases      int     `json:"increases"`
	ResetPairs     int     `json:"reset_pairs"`
	AffectedRows   int     `json:"affected_rows"`
	TotalPairs     int     `json:"total_pairs"`
	DamageFraction float64 `json:"damage_fraction"`
	FellBack       bool    `json:"fell_back"`
}

func (s *server) handleReweight(w http.ResponseWriter, r *http.Request) error {
	var req reweightRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if len(req.Edits) == 0 {
		return badRequest("reweight needs at least one [u, v, w] edit")
	}
	fp, err := oracle.ParseFingerprint(req.Graph)
	if err != nil {
		return badRequest("%v", err)
	}
	edits := make([]apsp.EdgeEdit, len(req.Edits))
	for i, e := range req.Edits {
		u, v := int(e[0]), int(e[1])
		if float64(u) != e[0] || float64(v) != e[1] {
			return badRequest("edit %d: endpoints (%g,%g) are not integers", i, e[0], e[1])
		}
		edits[i] = apsp.EdgeEdit{U: u, V: v, W: e[2]}
	}
	newFp, o, st, err := s.reg.Reweight(fp, edits)
	if errors.Is(err, oracle.ErrUnknownGraph) {
		return &apiError{status: http.StatusNotFound,
			err: fmt.Errorf("unknown graph %s: load or generate it first", req.Graph)}
	}
	if err != nil {
		return badRequest("reweight failed: %v", err)
	}
	g := o.Graph()
	return writeJSON(w, reweightResponse{
		Graph:          newFp.String(),
		N:              g.N(),
		M:              g.M(),
		Edits:          st.Edits,
		Decreases:      st.Decreases,
		Increases:      st.Increases,
		ResetPairs:     st.ResetPairs,
		AffectedRows:   st.AffectedRows,
		TotalPairs:     st.TotalPairs,
		DamageFraction: st.DamageFraction,
		FellBack:       st.FellBack,
	})
}

// statszResponse is the /statsz report: registry counters plus the
// per-endpoint traffic counters.
type statszResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Registry      registrySnapshot            `json:"registry"`
	Endpoints     map[string]endpointSnapshot `json:"endpoints"`
}

type registrySnapshot struct {
	Solves          int64   `json:"solves"`
	Hits            int64   `json:"hits"`
	Misses          int64   `json:"misses"`
	Evictions       int64   `json:"evictions"`
	Entries         int     `json:"entries"`
	Bytes           int64   `json:"bytes"`
	BudgetBytes     int64   `json:"budget_bytes"`
	SolveMs         float64 `json:"solve_ms"`
	QueriesServed   int64   `json:"queries_served"`
	QueriesInFlight int64   `json:"queries_in_flight"`
	QueryMs         float64 `json:"query_ms"`
	// Reweight counters: repair_fallbacks counts reweights whose edit
	// damage forced a warm re-solve instead of an incremental repair.
	Reweights       int64   `json:"reweights"`
	RepairFallbacks int64   `json:"repair_fallbacks"`
	RepairMs        float64 `json:"repair_ms"`
	// Symbolic plan-cache counters of the sparse solver: plan_hits are
	// solves that reused a cached plan (zero ordering/eTree/fill-mask
	// work). All zero when the registry's solver runs without a cache.
	PlanBuilds  int64   `json:"plan_builds"`
	PlanHits    int64   `json:"plan_hits"`
	PlanEntries int     `json:"plan_entries"`
	PlanBuildMs float64 `json:"plan_build_ms"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) error {
	st := s.reg.Stats()
	resp := statszResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Registry: registrySnapshot{
			Solves:          st.Solves,
			Hits:            st.Hits,
			Misses:          st.Misses,
			Evictions:       st.Evictions,
			Entries:         st.Entries,
			Bytes:           st.Bytes,
			BudgetBytes:     st.BudgetBytes,
			SolveMs:         float64(st.SolveNanos) / 1e6,
			QueriesServed:   st.QueriesServed,
			QueriesInFlight: st.QueriesInFlight,
			QueryMs:         float64(st.QueryNanos) / 1e6,
			Reweights:       st.Reweights,
			RepairFallbacks: st.RepairFallbacks,
			RepairMs:        float64(st.RepairNanos) / 1e6,
			PlanBuilds:      st.PlanBuilds,
			PlanHits:        st.PlanHits,
			PlanEntries:     st.PlanEntries,
			PlanBuildMs:     float64(st.PlanBuildNanos) / 1e6,
		},
		Endpoints: make(map[string]endpointSnapshot, len(s.endpoints)),
	}
	for name, ep := range s.endpoints {
		resp.Endpoints[name] = ep.snapshot()
	}
	return writeJSON(w, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, map[string]string{"status": "ok"})
}
