// Command apspd is the distance-oracle query server: it keeps solved
// APSP results behind an HTTP JSON API so the expensive solve is paid
// once per graph and amortized over many point/path queries — the
// precompute-once / query-many shape of road-network workloads.
//
// Endpoints:
//
//	POST /load      edge-list text or JSON {"n": 9, "edges": [[0,1,2.5], ...]}
//	POST /generate  {"kind": "grid", "n": 1024, "seed": 42}
//	POST /query     {"graph": "<id>", "pairs": [[0, 8], ...], "paths": true}
//	GET  /statsz    registry + per-endpoint counters
//	GET  /healthz   liveness probe
//
// /load and /generate solve the graph through the shared registry:
// concurrent requests for the same graph coalesce into exactly one
// solve, and solved results are retained LRU under -budget-mb. The
// returned "graph" id is the content fingerprint to pass to /query.
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// Usage:
//
//	apspd -addr :8080 -algorithm auto -kernel tiled -budget-mb 512
//	apspd -addr :8080 -pprof localhost:6060   # live profiling on a side address
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the default mux; served only when -pprof is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparseapsp"
	"sparseapsp/internal/semiring"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		alg      = flag.String("algorithm", "auto", "APSP solver: auto, sparse2d, dc, 2dfw, 1dfw, fw, blockedfw, superfw, superfw-par, johnson")
		p        = flag.Int("p", 0, "simulated machine size for the distributed solvers (0 = sequential auto)")
		kernel   = flag.String("kernel", "serial", "min-plus kernel: serial, tiled, pooled")
		seed     = flag.Int64("seed", 42, "nested-dissection seed")
		budgetMB = flag.Int64("budget-mb", 0, "oracle cache memory budget in MiB (0 = unlimited)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		exec     = flag.String("executor", "dataflow", "plan executor for sparse solves: dataflow (worker pool) or machine (goroutine per rank)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables profiling")
	)
	flag.Parse()

	kern, err := semiring.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apspd:", err)
		os.Exit(1)
	}
	ex, err := sparseapsp.ParseExecutor(*exec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apspd:", err)
		os.Exit(1)
	}
	opts := sparseapsp.Options{
		Algorithm: sparseapsp.Algorithm(*alg),
		P:         *p,
		Seed:      *seed,
		Kernel:    kern,
		Executor:  ex,
	}
	reg := sparseapsp.NewOracleRegistry(opts, *budgetMB<<20)
	srv := &http.Server{Addr: *addr, Handler: newServer(reg)}

	if *pprofA != "" {
		// The pprof handlers live on the default mux, which the query
		// server never serves — profiling stays off the public address.
		go func() {
			log.Printf("apspd: pprof endpoints on http://%s/debug/pprof/", *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Printf("apspd: pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("apspd: serving on %s (algorithm=%s kernel=%s budget=%d MiB)",
			*addr, *alg, *kernel, *budgetMB)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("apspd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("apspd: shutting down, draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("apspd: drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("apspd: %v", err)
	}
	log.Printf("apspd: bye")
}
