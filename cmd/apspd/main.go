// Command apspd is the distance-oracle query server: it keeps solved
// APSP results behind an HTTP JSON API so the expensive solve is paid
// once per graph and amortized over many point/path queries — the
// precompute-once / query-many shape of road-network workloads.
//
// Endpoints (both modes speak the same wire protocol):
//
//	POST /load      edge-list text or JSON {"n": 9, "edges": [[0,1,2.5], ...]}
//	POST /generate  {"kind": "grid", "n": 1024, "seed": 42}
//	POST /query     {"graph": "<id>", "pairs": [[0, 8], ...], "paths": true}
//	POST /reweight  {"graph": "<id>", "edits": [[0, 1, 3.5], ...]}
//	GET  /statsz    registry + per-endpoint counters
//	GET  /healthz   liveness probe (process is up)
//	GET  /readyz    readiness probe (willing to take traffic; 503 while draining)
//
// Modes:
//
//   - serve (default): one process, one oracle registry. /load and
//     /generate solve the graph through the shared registry: concurrent
//     requests for the same graph coalesce into exactly one solve, and
//     solved results are retained LRU under -budget-mb. The returned
//     "graph" id is the content fingerprint to pass to /query.
//   - router: the fleet coordinator. No local solves — graph
//     fingerprints are consistent-hash-sharded across -backends with
//     replication factor -replicas, hot (source, target) pairs are
//     served from an LRU cache without any backend round-trip, and
//     per-backend admission control turns saturation into 429 +
//     Retry-After. Backends are health-probed via /readyz and ejected /
//     re-admitted automatically.
//
// SIGINT/SIGTERM drain before exit: /readyz flips to 503 (so load
// balancers and the router stop sending work), open connections finish,
// and — in serve mode — in-flight solves coalesced in the registry are
// waited for, not just open sockets.
//
// Usage:
//
//	apspd -addr :8080 -algorithm auto -kernel tiled -budget-mb 512
//	apspd -addr :8080 -pprof localhost:6060   # live profiling on a side address
//	apspd -mode router -addr :8080 -backends http://s1:8081,http://s2:8082 -replicas 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the default mux; served only when -pprof is set
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sparseapsp"
	"sparseapsp/internal/fleet"
	"sparseapsp/internal/semiring"
	"sparseapsp/internal/server"
)

func main() {
	var (
		mode  = flag.String("mode", "serve", "serve (single-process oracle) or router (fleet coordinator)")
		addr  = flag.String("addr", ":8080", "listen address")
		drain = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")

		// serve-mode flags
		alg      = flag.String("algorithm", "auto", "APSP solver: auto, sparse2d, dc, 2dfw, 1dfw, fw, blockedfw, superfw, superfw-par, johnson")
		p        = flag.Int("p", 0, "simulated machine size for the distributed solvers (0 = sequential auto)")
		kernel   = flag.String("kernel", "serial", "min-plus kernel: serial, tiled, pooled")
		seed     = flag.Int64("seed", 42, "nested-dissection seed")
		budgetMB = flag.Int64("budget-mb", 0, "oracle cache memory budget in MiB (0 = unlimited)")
		compMB   = flag.Int64("compressed-budget-mb", 0, "compressed-tier budget in MiB: LRU-evicted oracles demote to losslessly quantized distance blobs and promote back on access (0 = tier disabled, evictions drop)")
		planDir  = flag.String("plan-dir", "", "persist symbolic plans to this directory: a restarted process reloads them and serves warm solves with zero symbolic rebuilds (empty = memory-only cache)")
		exec     = flag.String("executor", "dataflow", "plan executor for sparse solves: dataflow (worker pool) or machine (goroutine per rank)")
		schedule = flag.String("schedule", "critical", "dataflow scheduling policy: critical (critical-path priorities, the default) or fifo (unordered ready queue)")
		fuse     = flag.String("fuse", "on", "dataflow node fusion: on (fused panel chains + coalesced relay runs, the default) or off (one node per plan op)")
		workers  = flag.Int("exec-workers", 0, "dataflow executor worker count; 0 = auto (sized from the host, capped at p)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables profiling")

		// router-mode flags
		backends  = flag.String("backends", "", "router: comma-separated backend base URLs (http://host:port)")
		replicas  = flag.Int("replicas", 2, "router: replication factor R (capped at the backend count)")
		vnodes    = flag.Int("vnodes", fleet.DefaultVNodes, "router: virtual nodes per backend on the hash ring")
		cachePair = flag.Int("cache-pairs", fleet.DefaultCachePairs, "router: hot-pair cache capacity in (graph, src, dst) entries; negative disables")
		maxInFl   = flag.Int("max-inflight", 256, "router: admitted in-flight requests per backend before 429")
		probeIv   = flag.Duration("probe-interval", 500*time.Millisecond, "router: backend /readyz probe period")
	)
	flag.Parse()

	var handler http.Handler
	var onSignal func()                   // flip readiness off
	var quiesce func(ctx context.Context) // wait for work the socket close cannot see
	var banner string

	switch *mode {
	case "serve":
		kern, err := semiring.ParseKernel(*kernel)
		if err != nil {
			fatal(err)
		}
		ex, err := sparseapsp.ParseExecutor(*exec)
		if err != nil {
			fatal(err)
		}
		sched, err := sparseapsp.ParseSchedule(*schedule)
		if err != nil {
			fatal(err)
		}
		fu, err := sparseapsp.ParseFuse(*fuse)
		if err != nil {
			fatal(err)
		}
		// 0 means auto; an explicit -exec-workers must name at least one
		// worker. flag.Visit distinguishes "-exec-workers 0" from the
		// default.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exec-workers" && *workers < 1 {
				fatal(fmt.Errorf("-exec-workers %d: want at least 1 worker (omit the flag for auto)", *workers))
			}
		})
		opts := sparseapsp.Options{
			Algorithm:   sparseapsp.Algorithm(*alg),
			P:           *p,
			Seed:        *seed,
			Kernel:      kern,
			Executor:    ex,
			Schedule:    sched,
			Fuse:        fu,
			ExecWorkers: *workers,
		}
		if *planDir != "" {
			plans, err := sparseapsp.NewPlanCacheAt(*planDir)
			if err != nil {
				fatal(err)
			}
			opts.Plans = plans
		}
		reg := sparseapsp.NewTieredOracleRegistry(opts, *budgetMB<<20, *compMB<<20)
		srv := server.New(reg)
		handler = srv
		onSignal = srv.BeginDrain
		// Server.Shutdown only waits for open connections; a solve whose
		// originating client disconnected (or whose waiters coalesced in
		// the registry singleflight) keeps running after the socket
		// closes. Quiesce waits for those too, so a SIGTERM never
		// abandons a half-finished solve mid-flight.
		quiesce = func(ctx context.Context) {
			if err := reg.Quiesce(ctx); err != nil {
				log.Printf("apspd: %d solve(s) still in flight at drain deadline: %v",
					reg.ActiveSolves(), err)
			}
		}
		banner = fmt.Sprintf("serving on %s (algorithm=%s kernel=%s budget=%d MiB compressed=%d MiB plan-dir=%q)",
			*addr, *alg, *kernel, *budgetMB, *compMB, *planDir)

	case "router":
		urls := splitBackends(*backends)
		if len(urls) == 0 {
			fatal(errors.New("-mode router needs -backends (comma-separated URLs)"))
		}
		rt, err := fleet.NewRouter(fleet.Config{
			Backends:      urls,
			Replicas:      *replicas,
			VNodes:        *vnodes,
			CachePairs:    *cachePair,
			MaxInFlight:   *maxInFl,
			ProbeInterval: *probeIv,
		})
		if err != nil {
			fatal(err)
		}
		handler = rt
		onSignal = func() {}
		quiesce = func(context.Context) { rt.Close() }
		banner = fmt.Sprintf("serving on %s as %s", *addr, rt)

	default:
		fatal(fmt.Errorf("unknown -mode %q: want serve or router", *mode))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	if *pprofA != "" {
		// Label dataflow node execution with op_kind/phase/level so CPU
		// profiles taken through this endpoint attribute solver time per
		// op class.
		sparseapsp.EnableProfileLabels(true)
		// The pprof handlers live on the default mux, which the query
		// server never serves — profiling stays off the public address.
		go func() {
			log.Printf("apspd: pprof endpoints on http://%s/debug/pprof/", *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Printf("apspd: pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("apspd: %s", banner)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("apspd: %v", err)
	case <-ctx.Done():
	}

	// Drain sequence: readiness off first (new traffic stops arriving),
	// then close listeners and wait for open connections, then wait for
	// registry work no socket is attached to.
	log.Printf("apspd: shutting down, draining in-flight requests (up to %s)", *drain)
	onSignal()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("apspd: drain incomplete: %v", err)
	}
	quiesce(shutdownCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("apspd: %v", err)
	}
	log.Printf("apspd: bye")
}

func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, strings.TrimRight(part, "/"))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apspd:", err)
	os.Exit(1)
}
