// Command apspbench regenerates the reproduction experiments of
// DESIGN.md: the Table 2 comparisons (memory, bandwidth, latency), the
// Section 5.5 reduction factors, the Section 5.4.4 preprocessing cost,
// the sparsity crossover, the operation-count checks and the Figure 1
// reordering demo.
//
// Usage:
//
//	apspbench -exp all
//	apspbench -exp table2-latency -sides 16,24,32 -ps 9,49,225
//	apspbench -exp none -kernel sparse -wire packed -bench-out BENCH_sparse.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/harness"
	"sparseapsp/internal/semiring"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: all, none, or a comma-separated list of table2-memory, table2-bandwidth, table2-latency, factors, lower, sepcost, crossover, wire, comm, plan, exec, sched, reweight, opcount, perlevel, balance, weak, strong, serve, store, fig1")
		sides        = flag.String("sides", "16,24,32", "comma-separated 2D grid sides (n = side²)")
		ps           = flag.String("ps", "9,49,225,961", "comma-separated machine sizes (sparse algorithm needs (2^h-1)²)")
		seed         = flag.Int64("seed", 42, "nested-dissection seed")
		cyc          = flag.Int("cyclic", 4, "DC-APSP block-cyclic factor")
		xn           = flag.Int("crossover-n", 576, "crossover experiment graph size")
		xp           = flag.Int("crossover-p", 49, "crossover experiment machine size")
		csv          = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut      = flag.String("json", "", "also write all experiment tables as machine-readable JSON to this file")
		kernel       = flag.String("kernel", "serial", "min-plus kernel for local block arithmetic: serial, tiled, pooled, sparse (results and measured costs are identical; wall-clock only)")
		wire         = flag.String("wire", "packed", "sparse-solver payload encoding: packed (structure-aware, the default), dense (ablation baseline) or pruned (demand keep-lists)")
		bench        = flag.String("bench-out", "", "write the perf-row benchmark sweep (family, n, p, kernel, wire, ns/op, words, flops) as JSON to this file")
		force        = flag.Bool("force", false, "allow -bench-out to overwrite an existing file (committed reference runs are protected by default)")
		exec         = flag.String("executor", "dataflow", "plan executor for every experiment: dataflow (bounded worker pool, the default) or machine (goroutine per rank); costs are identical, wall-clock differs")
		schedule     = flag.String("schedule", "critical", "dataflow scheduling policy: critical (critical-path priorities with work stealing, the default) or fifo (unordered ready queue, the ablation baseline); costs are identical, wall-clock differs")
		fuse         = flag.String("fuse", "on", "dataflow node fusion: on (fused panel chains + coalesced relay runs, the default) or off (one scheduler node per plan op, the ablation baseline); costs are identical, wall-clock differs")
		execWorkers  = flag.Int("exec-workers", 0, "dataflow executor worker count; 0 = auto (sized from the host, capped at p)")
		reps         = flag.Int("exec-reps", 5, "timed repetitions per executor in the exec experiment (best-of)")
		serveN       = flag.Int("serve-n", 256, "serve experiment: grid workload size (n = side²)")
		serveClients = flag.Int("serve-clients", 16, "serve experiment: concurrent load-generator clients")
		serveBatches = flag.Int("serve-batches", 150, "serve experiment: query batches per client")
		serveFleet   = flag.String("serve-fleet", "1,2,4", "serve experiment: comma-separated backend counts to sweep")
		order        = flag.String("order", "nd", "store experiment: vertex labeling fed to the solver — nd (natural input order) or rcm (Reverse Cuthill–McKee relabeling first)")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	kern, err := semiring.ParseKernel(*kernel)
	if err != nil {
		fatal(err)
	}
	wf, err := apsp.ParseWireFormat(*wire)
	if err != nil {
		fatal(err)
	}
	ex, err := apsp.ParseExecutor(*exec)
	if err != nil {
		fatal(err)
	}
	sched, err := apsp.ParseSchedule(*schedule)
	if err != nil {
		fatal(err)
	}
	fu, err := apsp.ParseFuse(*fuse)
	if err != nil {
		fatal(err)
	}
	// 0 means auto; an explicit -exec-workers must name at least one
	// worker. flag.Visit distinguishes "-exec-workers 0" from the default.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exec-workers" && *execWorkers < 1 {
			fatal(fmt.Errorf("-exec-workers %d: want at least 1 worker (omit the flag for auto)", *execWorkers))
		}
	})
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// Label dataflow node execution with op_kind/phase/level so the
		// profile attributes kernel time per op class.
		apsp.EnableProfileLabels(true)
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	cfg := harness.Config{
		GridSides:    parseInts(*sides),
		Ps:           parseInts(*ps),
		Seed:         *seed,
		CyclicFactor: *cyc,
		Kernel:       kern,
		Wire:         wf,
		Executor:     ex,
		Schedule:     sched,
		Fuse:         fu,
		ExecWorkers:  *execWorkers,
	}

	needSuite := map[string]bool{"all": true, "table2-memory": true,
		"table2-bandwidth": true, "table2-latency": true, "factors": true, "lower": true}

	var suite *harness.Suite
	if needSuite[*exp] {
		fmt.Fprintf(os.Stderr, "running sweep: sides=%v ps=%v ...\n", cfg.GridSides, cfg.Ps)
		var err error
		suite, err = harness.NewSuite(cfg)
		if err != nil {
			fatal(err)
		}
	}

	var collected []*harness.Table
	show := func(name string, t *harness.Table, err error) {
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		collected = append(collected, t)
		if *csv {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			return
		}
		t.Fprint(os.Stdout)
	}

	run := func(name string) {
		switch name {
		case "table2-memory":
			show(name, suite.Table2Memory(), nil)
		case "table2-bandwidth":
			show(name, suite.Table2Bandwidth(), nil)
		case "table2-latency":
			show(name, suite.Table2Latency(), nil)
		case "factors":
			show(name, suite.ReductionFactors(), nil)
		case "lower":
			show(name, suite.LowerBounds(), nil)
		case "sepcost":
			t, err := harness.SeparatorCost(cfg)
			show(name, t, err)
		case "crossover":
			t, err := harness.Crossover(cfg, *xn, *xp)
			show(name, t, err)
		case "wire":
			t, err := harness.WireComparison(cfg, *xn, *xp)
			show(name, t, err)
		case "comm":
			t, err := harness.CommBreakdown(cfg, *xn, *xp)
			show(name, t, err)
		case "plan":
			t, err := harness.PlanReuse(cfg, *xn, *xp)
			show(name, t, err)
		case "exec":
			t, err := harness.ExecutorComparison(cfg, *reps)
			show(name, t, err)
		case "sched":
			t, err := harness.SchedulerAblation(cfg, *reps)
			show(name, t, err)
		case "reweight":
			t, err := harness.ReweightAblation(cfg, *xn, *xp, *reps)
			show(name, t, err)
		case "opcount":
			t, err := harness.OperationCounts(cfg)
			show(name, t, err)
		case "balance":
			side := 1
			for (side+1)*(side+1) <= *xn {
				side++
			}
			t, err := harness.LoadBalance(cfg, side, *xp)
			show(name, t, err)
		case "weak":
			t, err := harness.WeakScaling(cfg)
			show(name, t, err)
		case "strong":
			side := 1
			for (side+1)*(side+1) <= *xn {
				side++
			}
			t, err := harness.StrongScaling(cfg, side)
			show(name, t, err)
		case "perlevel":
			side := 1
			for (side+1)*(side+1) <= *xn {
				side++
			}
			t, err := harness.PerLevel(cfg, side, *xp)
			show(name, t, err)
		case "serve":
			scfg := harness.DefaultServeConfig()
			scfg.N = *serveN
			scfg.Clients = *serveClients
			scfg.Batches = *serveBatches
			scfg.Fleet = parseInts(*serveFleet)
			scfg.Seed = *seed
			t, err := harness.ServeBench(scfg)
			show(name, t, err)
		case "store":
			t, err := harness.StoreBench(cfg, *xn, *xp, *order)
			show(name, t, err)
		case "fig1":
			t, err := harness.Figure1(*seed)
			show(name, t, err)
		case "none":
			// Run no experiment tables; used with -bench-out alone.
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table2-memory", "table2-bandwidth", "table2-latency",
			"factors", "lower", "sepcost", "crossover", "wire", "comm", "plan", "exec", "sched", "reweight", "opcount", "perlevel", "balance", "weak", "strong", "serve", "store", "fig1"} {
			run(name)
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if name = strings.TrimSpace(name); name != "" {
				run(name)
			}
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteJSON(f, collected); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d experiment tables to %s\n", len(collected), *jsonOut)
	}
	if *bench != "" {
		// Committed reference runs (BENCH_*.json) must not be clobbered
		// by a stray rerun; require -force to overwrite.
		if !*force {
			if _, err := os.Stat(*bench); err == nil {
				fatal(fmt.Errorf("-bench-out %s already exists; pass -force to overwrite", *bench))
			}
		}
		fmt.Fprintf(os.Stderr, "running benchmark sweep: kernel=%s wire=%s ...\n", kern, wf)
		rows, err := harness.PerfSweep(cfg)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*bench)
		if err != nil {
			fatal(err)
		}
		if err := harness.WritePerfJSON(f, rows); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d benchmark rows to %s\n", len(rows), *bench)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", part))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apspbench:", err)
	os.Exit(1)
}
