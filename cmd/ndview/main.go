// Command ndview visualizes the preprocessing pipeline of the paper:
// the nested-dissection supernodes, the elimination tree (Figures 2
// and 3a), the reordered adjacency pattern (Figure 1d) and the update
// regions R_l^1..R_l^4 (Figure 3b).
//
// Usage:
//
//	ndview -fig1                      # the paper's example graph
//	ndview -gen grid -n 64 -h 3       # ordering of a grid
//	ndview -regions -h 4 -l 2         # Figure 3b region map
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/etree"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/harness"
	"sparseapsp/internal/partition"
)

func main() {
	var (
		fig1    = flag.Bool("fig1", false, "show the Figure 1 reordering demo")
		regions = flag.Bool("regions", false, "show the R_l region map of an eTree (Figure 3b)")
		traffic = flag.Bool("traffic", false, "run the sparse solver and show the rank-to-rank traffic heatmap")
		gen     = flag.String("gen", "grid", "workload generator for the ordering view")
		n       = flag.Int("n", 64, "vertex count")
		h       = flag.Int("h", 3, "eTree height")
		l       = flag.Int("l", 2, "level for -regions")
		seed    = flag.Int64("seed", 42, "nested-dissection seed")
	)
	flag.Parse()

	switch {
	case *traffic:
		showTraffic(*gen, *n, *h, *seed)
	case *fig1:
		t, err := harness.Figure1(*seed)
		if err != nil {
			fatal(err)
		}
		t.Fprint(os.Stdout)
	case *regions:
		showRegions(*h, *l)
	default:
		showOrdering(*gen, *n, *h, *seed)
	}
}

func showOrdering(gen string, n, h int, seed int64) {
	g, err := graph.NamedGenerator(gen, n, seed)
	if err != nil {
		fatal(err)
	}
	nd, err := partition.NestedDissection(g, h, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %s, n=%d m=%d; eTree height %d, %d supernodes\n\n",
		gen, g.N(), g.M(), h, nd.N)
	tr := etree.New(h)
	fmt.Println("eTree (labels level by level, bottom-up as in Fig. 3a):")
	for lvl := h; lvl >= 1; lvl-- {
		fmt.Printf("  level %d:", lvl)
		for _, k := range tr.LevelNodes(lvl) {
			fmt.Printf("  %d(size %d)", k, nd.Sizes[k])
		}
		fmt.Println()
	}
	fmt.Printf("\ntop separator |S| = %d, largest separator = %d\n",
		nd.SeparatorSize(), nd.MaxSeparatorSize())
	if err := partition.CheckSeparation(g, nd); err != nil {
		fmt.Println("SEPARATION VIOLATION:", err)
	} else {
		fmt.Println("cousin separation verified: all cousin blocks of the reordered matrix are empty")
	}
	if g.N() <= 80 {
		pg := g.Permute(nd.Perm)
		fmt.Println("\nreordered adjacency pattern (o = finite entry):")
		for i := 0; i < pg.N(); i++ {
			var sb strings.Builder
			for j := 0; j < pg.N(); j++ {
				if i == j {
					sb.WriteByte('o')
				} else if _, ok := pg.HasEdge(i, j); ok {
					sb.WriteByte('o')
				} else {
					sb.WriteByte('.')
				}
			}
			fmt.Println("  " + sb.String())
		}
	}
}

func showRegions(h, l int) {
	tr := etree.New(h)
	if l < 1 || l > h {
		fatal(fmt.Errorf("level %d outside [1,%d]", l, h))
	}
	fmt.Printf("eTree height %d (√p = %d), elimination level %d\n", h, tr.N, l)
	fmt.Println("block region map (rows/cols are supernode labels; 1..4 = R_l^1..R_l^4, . = untouched):")
	header := "     "
	for j := 1; j <= tr.N; j++ {
		header += fmt.Sprintf("%3d", j)
	}
	fmt.Println(header)
	for i := 1; i <= tr.N; i++ {
		row := fmt.Sprintf("%4d ", i)
		for j := 1; j <= tr.N; j++ {
			r := tr.RegionOf(l, i, j)
			if r == 0 {
				row += "  ."
			} else {
				row += fmt.Sprintf("%3d", r)
			}
		}
		fmt.Println(row)
	}
	units := tr.UnitsForLevel(l)
	fmt.Printf("\nR_%d^4 computing units (Corollary 5.5 one-to-one map): %d units\n", l, len(units))
	for _, u := range units {
		fmt.Printf("  P(%2d,%2d) computes A(%d,%d) ⊗ A(%d,%d)\n", u.F, u.G, u.I, u.K, u.K, u.J)
	}
}

// showTraffic renders the words-sent matrix of a sparse solve as an
// ASCII heatmap: the eTree structure is visible as hot pivot
// rows/columns and the Corollary 5.5 unit-processor rows.
func showTraffic(gen string, n, h int, seed int64) {
	g, err := graph.NamedGenerator(gen, n, seed)
	if err != nil {
		fatal(err)
	}
	s := (1 << h) - 1
	p := s * s
	res, err := apsp.SparseAPSP(g, p, seed)
	if err != nil {
		fatal(err)
	}
	tr := res.Traffic
	var max int64
	for _, row := range tr {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	fmt.Printf("sparse solve on %s n=%d, p=%d (grid %dx%d); words sent, max cell = %d\n", gen, g.N(), p, s, s, max)
	fmt.Println("heatmap (rows = senders, cols = receivers; . 0, then ░▒▓█ by volume):")
	shades := []rune{'.', '░', '▒', '▓', '█'}
	for src := 0; src < p; src++ {
		var sb strings.Builder
		for dst := 0; dst < p; dst++ {
			v := tr[src][dst]
			idx := 0
			if v > 0 && max > 0 {
				idx = 1 + int(3*v/(max+1))
			}
			sb.WriteRune(shades[idx])
		}
		fmt.Println("  " + sb.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndview:", err)
	os.Exit(1)
}
